package bsor

import (
	"bytes"
	"context"
	"encoding/json"
	"sync/atomic"
	"testing"
)

// TestProgressSerializedMonotonic pins the WithProgress contract under
// -race with a real multi-worker run: callbacks never overlap, done
// increases by exactly one per call from 1 to NumJobs, and total is
// constant. The entered flag catches concurrent entry even when the race
// detector alone would miss a semantic (non-memory) overlap.
func TestProgressSerializedMonotonic(t *testing.T) {
	rates := make([]float64, 12)
	for i := range rates {
		rates[i] = 0.05 * float64(i+1)
	}
	specs := []Spec{{
		Topo: Mesh(4, 4), Workload: "transpose",
		Sim: &SimSpec{Rates: rates, Warmup: 500, Measure: 2000, Seed: 1},
	}}

	var entered int32
	prev := 0
	wantTotal := 0
	p, err := NewPipeline(specs, WithWorkers(4), WithProgress(func(done, total int) {
		if !atomic.CompareAndSwapInt32(&entered, 0, 1) {
			t.Error("progress callback entered concurrently")
		}
		if done != prev+1 {
			t.Errorf("done = %d after %d, want %d", done, prev, prev+1)
		}
		prev = done
		if total != wantTotal {
			t.Errorf("total = %d, want %d", total, wantTotal)
		}
		atomic.StoreInt32(&entered, 0)
	}))
	if err != nil {
		t.Fatal(err)
	}
	wantTotal = p.NumJobs()
	if _, err := p.RunAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if prev != wantTotal {
		t.Errorf("final done = %d, want %d", prev, wantTotal)
	}

	// The streaming path uses the same serialized reporter.
	prev, wantTotal = 0, p.NumJobs()
	ch, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for range ch {
	}
	if prev != wantTotal {
		t.Errorf("streaming final done = %d, want %d", prev, wantTotal)
	}
}

// TestMetricsOutOfBand is the collector's core guarantee, end to end:
// the marshaled results of a pipeline are byte-identical with metrics
// off (one worker) and metrics on (four workers), while the collector
// itself reports non-zero simplex pivots, synthesis-cache hits, and
// simulated cycles.
func TestMetricsOutOfBand(t *testing.T) {
	specs := []Spec{
		{Name: "milp", Topo: Mesh(4, 4), Workload: "transpose", Algorithm: "BSOR-MILP"},
		{Name: "sweep", Topo: Mesh(4, 4), Workload: "shuffle",
			Sim: &SimSpec{Rates: []float64{0.05, 0.1, 0.15}, Warmup: 500, Measure: 2000, Seed: 7}},
	}
	run := func(opts ...Option) []byte {
		t.Helper()
		opts = append(opts, WithMILPBudget(FastMILPBudget()))
		p, err := NewPipeline(specs, opts...)
		if err != nil {
			t.Fatal(err)
		}
		results, err := p.RunAll(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range results {
			if r.Err != nil {
				t.Fatalf("spec %s: %v", r.Name, r.Err)
			}
		}
		j, err := json.MarshalIndent(results, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		return j
	}

	plain := run(WithWorkers(1))
	m := NewMetrics()
	instrumented := run(WithWorkers(4), WithMetrics(m))
	if !bytes.Equal(plain, instrumented) {
		t.Errorf("results differ with metrics on:\noff: %s\non:  %s", plain, instrumented)
	}

	snap := m.Snapshot()
	for _, name := range []string{
		"engine_jobs_total",
		"engine_synth_cache_hits_total",
		"lp_simplex_pivots_total",
		"sim_cycles_total",
		"route_paths_kept_total",
	} {
		if snap[name] <= 0 {
			t.Errorf("%s = %g, want > 0 (snapshot: %v)", name, snap[name], snap)
		}
	}
	// Three sim points share one synthesis: exactly two cache hits.
	if hits := snap["engine_synth_cache_hits_total"]; hits != 2 {
		t.Errorf("cache hits = %g, want 2 (three points, one synthesis)", hits)
	}
	if snap["engine_job_errors_total"] != 0 {
		t.Errorf("job errors = %g, want 0", snap["engine_job_errors_total"])
	}
}

// TestNilMetricsSafe pins the nil-receiver contract of the public
// wrapper: a nil *Metrics is inert everywhere WithMetrics and the
// accessors accept one.
func TestNilMetricsSafe(t *testing.T) {
	var m *Metrics
	if m.Snapshot() != nil {
		t.Error("nil Snapshot not nil")
	}
	if err := m.WritePrometheus(nil); err != nil {
		t.Errorf("nil WritePrometheus: %v", err)
	}
	if err := m.PublishExpvar("unused"); err != nil {
		t.Errorf("nil PublishExpvar: %v", err)
	}
	p, err := NewPipeline([]Spec{{Topo: Mesh(4, 4), Workload: "transpose"}}, WithMetrics(nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunAll(context.Background()); err != nil {
		t.Fatal(err)
	}
}
