package bsor_test

import (
	"context"
	"fmt"
	"log"

	"repro/bsor"
)

// ExampleSynthesize routes a custom three-flow workload on a 4x4 mesh:
// BSOR explores fifteen acyclic channel dependence graphs and keeps the
// route set with the smallest maximum channel load, deadlock-free by
// construction.
func ExampleSynthesize() {
	err := bsor.RegisterWorkload("example-dma", func(t bsor.TopoInfo, demand float64) ([]bsor.Flow, error) {
		last := t.Nodes - 1
		return []bsor.Flow{
			{Name: "dma-a", Src: 0, Dst: last, Demand: 40},
			{Name: "dma-b", Src: 0, Dst: last, Demand: 40},
			{Name: "ctrl", Src: 3, Dst: last - 3, Demand: 10},
		}, nil
	})
	if err != nil {
		log.Fatal(err)
	}

	set, err := bsor.Synthesize(context.Background(), bsor.Spec{
		Topo: bsor.Mesh(4, 4), Workload: "example-dma", VCs: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MCL %.0f MB/s via CDG %q\n", set.MCL(), set.Breaker())
	fmt.Println("deadlock free:", set.VerifyDeadlockFree() == nil)
	// Output:
	// MCL 40 MB/s via CDG "S-first"
	// deadlock free: true
}

// ExamplePipeline synthesizes deadlock-free routes on a fault-degraded
// mesh — three links removed, connectivity preserved — where
// dimension-order routing no longer applies, and compares BSOR against
// the graph-generic shortest-path baseline.
func ExamplePipeline() {
	err := bsor.RegisterWorkload("example-faulted", func(t bsor.TopoInfo, demand float64) ([]bsor.Flow, error) {
		last := t.Nodes - 1
		return []bsor.Flow{
			{Name: "dma-a", Src: 0, Dst: last, Demand: 40},
			{Name: "dma-b", Src: 0, Dst: last, Demand: 40},
			{Name: "ctrl", Src: 3, Dst: last - 3, Demand: 10},
		}, nil
	})
	if err != nil {
		log.Fatal(err)
	}

	faulted := bsor.FaultedMesh(4, 4, 3, 7)
	p, err := bsor.NewPipeline([]bsor.Spec{
		{Name: "BSOR", Topo: faulted, Workload: "example-faulted"},
		{Name: "SP", Topo: faulted, Workload: "example-faulted", Algorithm: "SP"},
	})
	if err != nil {
		log.Fatal(err)
	}
	results, err := p.RunAll(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range results {
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		fmt.Printf("%s MCL %.0f MB/s\n", res.Name, res.MCL)
	}
	// The BSOR routes explored the graph-generic up*/down* CDGs of the
	// degraded fabric and stayed deadlock free.
	// Output:
	// BSOR MCL 40 MB/s
	// SP MCL 90 MB/s
}

// ExamplePipeline_cancellation shows the cancellation contract: a
// cancelled context stops the pipeline within one job boundary and
// surfaces ctx.Err().
func ExamplePipeline_cancellation() {
	p, err := bsor.NewPipeline([]bsor.Spec{{
		Topo: bsor.Mesh(8, 8), Workload: "transpose",
		Sim: &bsor.SimSpec{Rates: []float64{5, 10, 15, 20}},
	}})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before any job starts
	_, err = p.RunAll(ctx)
	fmt.Println(err)
	// Output:
	// context canceled
}
