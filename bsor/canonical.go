package bsor

import "encoding/json"

// Canonical validates the spec and returns it with every package-level
// default resolved into explicit fields: the algorithm name in canonical
// case (empty becomes the package default BSOR-Dijkstra), VCs, the
// breaker exploration set of a BSOR variant (empty becomes the
// topology's DefaultBreakers, spelled out), and the simulation cycle
// counts. Two specs that execute identically — however sparsely their
// JSON spells the defaults — canonicalize to the same value.
//
// Pure speed knobs are cleared: SimSpec.Workers never changes result
// bytes (DESIGN.md §15), so it is not part of a spec's identity. The
// diagnostic Name is kept — results echo it, so specs differing only by
// Name produce different output.
//
// Canonical resolves the package defaults, not a Pipeline's: options
// like WithSelector and WithSimDefaults shift what an empty field means
// for that pipeline, and a caller comparing specs across differently
// configured pipelines must spell those fields explicitly.
func (s Spec) Canonical() (Spec, error) {
	s = s.withDefaults(defaultConfig())
	if err := s.validate(""); err != nil {
		return Spec{}, err
	}
	if isBSOR(s.Algorithm) && len(s.Breakers) == 0 {
		s.Breakers = DefaultBreakers(s.Topo)
	}
	if s.Sim != nil {
		sim := *s.Sim // withDefaults already copied; keep Canonical alias-free
		sim.Workers = 0
		s.Sim = &sim
	}
	return s, nil
}

// CanonicalKey returns the canonical serialization of the spec: the
// JSON encoding of Canonical(), whose field order is fixed by the Spec
// struct, not by how a client happened to order its request document.
// Identical specs — same effective work, any JSON field order, defaults
// spelled or omitted — yield byte-identical keys, which is what makes
// the key safe to use for caching and request deduplication (the bsord
// daemon's route-set cache and singleflight group key on it).
func (s Spec) CanonicalKey() (string, error) {
	c, err := s.Canonical()
	if err != nil {
		return "", err
	}
	b, err := json.Marshal(c)
	if err != nil {
		return "", err
	}
	return string(b), nil
}
