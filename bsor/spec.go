package bsor

import (
	"errors"
	"fmt"

	"repro/internal/experiments"
)

// SimSpec declares the simulation sweep of a Spec: the cycle-accurate
// wormhole model runs once per offered rate on the synthesized routes.
type SimSpec struct {
	// Rates are the offered injection rates to sweep, in packets/cycle
	// network-wide. At least one is required.
	Rates []float64 `json:"rates"`
	// Warmup and Measure are the simulated cycle counts per point;
	// 0 means the thesis' published 20000 / 100000.
	Warmup  int64 `json:"warmup,omitempty"`
	Measure int64 `json:"measure,omitempty"`
	// Seed is the base random seed; per-point seeds derive from it, so
	// results are deterministic for any worker count.
	Seed int64 `json:"seed,omitempty"`
	// Variation enables ±percent Markov-modulated bandwidth variation
	// (0.10, 0.25, 0.50 in the thesis).
	Variation float64 `json:"variation,omitempty"`
	// Workers threads each individual simulation over spatial shards of
	// the topology (sim.Config.Workers): 0 or 1 keep the single-threaded
	// core; larger values are capped at the shard count. Purely a speed
	// knob — results are byte-identical for any value — and independent
	// of WithWorkers, which sizes the job pool across specs.
	Workers int `json:"workers,omitempty"`
}

// Spec declares one experiment unit: a workload routed by one algorithm
// on one topology, optionally simulated across offered rates. Specs are
// plain data and round-trip through JSON.
//
// A Spec without Sim produces one Result carrying the synthesis' maximum
// channel load (or one per explored breaker with Explore); a Spec with
// Sim produces one Result per offered rate, each carrying a simulation
// Point.
type Spec struct {
	// Name labels the spec in results and diagnostics. Optional.
	Name string `json:"name,omitempty"`
	// Topo declares the network. The zero value is the thesis' 8x8 mesh.
	Topo Topology `json:"topo"`
	// Workload names a built-in or registered workload (see Workloads).
	Workload string `json:"workload"`
	// Algorithm names the routing algorithm (see Algorithms); empty means
	// the pipeline default (BSOR-Dijkstra, or WithSelector's choice).
	Algorithm string `json:"algorithm,omitempty"`
	// Breakers lists the acyclic-CDG strategies a BSOR algorithm
	// explores, by name; empty means the topology's default set
	// (DefaultBreakers, or WithBreakers' choice). Baselines ignore it.
	Breakers []string `json:"breakers,omitempty"`
	// Explore makes an MCL-only BSOR spec report one Result per breaker
	// instead of the best across them (the Table 6.1/6.2 shape).
	Explore bool `json:"explore,omitempty"`
	// VCs is the virtual channel count; 0 means 2.
	VCs int `json:"vcs,omitempty"`
	// Demand overrides the per-flow bandwidth (MB/s) of synthetic
	// workloads; 0 means the published 25 MB/s. Profiled applications
	// carry fixed rates and ignore it.
	Demand float64 `json:"demand,omitempty"`
	// Capacity overrides the channel capacity (MB/s) BSOR synthesis
	// prices residual bandwidth against; 0 means 4x the largest demand.
	Capacity float64 `json:"capacity,omitempty"`
	// Sim, when non-nil, simulates the synthesized routes at each rate.
	Sim *SimSpec `json:"sim,omitempty"`
}

// knownTopoKinds mirrors the engine's TopoSpec.Build switch.
var knownTopoKinds = map[string]bool{
	"": true, "mesh": true, "torus": true, "ring": true, "fullmesh": true,
	"clos": true, "faulted-mesh": true, "faulted-torus": true,
}

// Validate checks the spec against the registries and returns a
// *SpecError describing the first problem found, or nil. label
// identifies the spec in the error ("" uses Spec.Name).
func (s Spec) validate(label string) error {
	if label == "" {
		label = s.Name
	}
	fail := func(field, reason string, args ...any) error {
		return &SpecError{Spec: label, Field: field, Reason: fmt.Sprintf(reason, args...)}
	}
	if !knownTopoKinds[s.Topo.Kind] {
		return fail("topo", "unknown topology kind %q", s.Topo.Kind)
	}
	if s.Topo.Width < 0 || s.Topo.Height < 0 || s.Topo.Nodes < 0 ||
		s.Topo.Spines < 0 || s.Topo.Leaves < 0 || s.Topo.Faults < 0 {
		return fail("topo", "negative topology parameter in %+v", s.Topo)
	}
	if s.Workload == "" {
		return fail("workload", "required (known: %v)", Workloads())
	}
	if !knownWorkload(s.Workload) {
		return fail("workload", "unknown workload %q (known: %v)", s.Workload, Workloads())
	}
	alg := s.Algorithm
	if alg != "" {
		canonical, err := NormalizeAlgorithm(alg)
		if err != nil {
			var se *SpecError
			if errors.As(err, &se) {
				return &SpecError{Spec: label, Field: se.Field, Reason: se.Reason}
			}
			return err
		}
		alg = canonical
	}
	for _, b := range s.Breakers {
		if !KnownBreaker(b) {
			return fail("breakers", "unknown breaker %q", b)
		}
	}
	if len(s.Breakers) > 0 && alg != "" && !isBSOR(alg) {
		return fail("breakers", "algorithm %s does not explore CDG breakers", alg)
	}
	if s.Explore {
		if alg != "" && !isBSOR(alg) {
			return fail("explore", "algorithm %s does not explore CDG breakers", alg)
		}
		if s.Sim != nil {
			return fail("explore", "per-breaker exploration is MCL-only; drop Sim or Explore")
		}
	}
	if s.VCs < 0 || s.VCs > 32 {
		return fail("vcs", "%d outside [0, 32]", s.VCs)
	}
	if s.Demand < 0 {
		return fail("demand", "negative demand %g", s.Demand)
	}
	if s.Capacity < 0 {
		return fail("capacity", "negative capacity %g", s.Capacity)
	}
	if s.Sim != nil {
		if len(s.Sim.Rates) == 0 {
			return fail("sim", "at least one offered rate is required")
		}
		for _, r := range s.Sim.Rates {
			if r < 0 {
				return fail("sim", "negative offered rate %g", r)
			}
		}
		if s.Sim.Warmup < 0 || s.Sim.Measure < 0 {
			return fail("sim", "negative cycle counts")
		}
		if s.Sim.Variation < 0 || s.Sim.Variation >= 1 {
			return fail("sim", "variation %g outside [0, 1)", s.Sim.Variation)
		}
		if s.Sim.Workers < 0 || s.Sim.Workers > 1024 {
			return fail("sim", "workers %d outside [0, 1024]", s.Sim.Workers)
		}
	}
	return nil
}

// Validate checks the spec against the registries: topology kind,
// workload and algorithm names, breaker names, and simulation
// parameters. Returns a *SpecError describing the first problem, or nil.
func (s Spec) Validate() error { return s.validate("") }

// withDefaults resolves the pipeline-level defaults into the spec and
// canonicalizes the algorithm name. Call only on validated specs.
func (s Spec) withDefaults(cfg config) Spec {
	if s.Algorithm == "" {
		s.Algorithm = cfg.algorithm
	} else if canonical, err := NormalizeAlgorithm(s.Algorithm); err == nil {
		s.Algorithm = canonical
	}
	if len(s.Breakers) == 0 && isBSOR(s.Algorithm) {
		s.Breakers = cfg.breakers // may stay nil: topology default at runtime
	}
	if s.VCs == 0 {
		s.VCs = 2
	}
	if s.Sim != nil {
		sim := *s.Sim
		if sim.Warmup == 0 {
			sim.Warmup = cfg.sim.Warmup
		}
		if sim.Measure == 0 {
			sim.Measure = cfg.sim.Measure
		}
		if sim.Seed == 0 {
			sim.Seed = cfg.sim.Seed
		}
		if sim.Workers == 0 {
			sim.Workers = cfg.sim.Workers
		}
		if sim.Warmup == 0 {
			sim.Warmup = 20000
		}
		if sim.Measure == 0 {
			sim.Measure = 100000
		}
		s.Sim = &sim
	}
	return s
}

// jobs expands one defaulted spec into engine jobs. label tags the jobs'
// Experiment field for diagnostics.
func (s Spec) jobs(label string) []experiments.Job {
	if s.Name != "" {
		label = s.Name
	}
	base := experiments.Job{
		Experiment: label,
		Kind:       experiments.KindMCL,
		Topo:       s.Topo.spec(),
		Workload:   s.Workload,
		Algorithm:  s.Algorithm,
		VCs:        s.VCs,
		Demand:     s.Demand,
		Capacity:   s.Capacity,
	}
	if isBSOR(s.Algorithm) {
		base.Breakers = s.Breakers
	}
	if s.Sim == nil {
		if !s.Explore {
			return []experiments.Job{base}
		}
		breakers := s.Breakers
		if len(breakers) == 0 {
			breakers = DefaultBreakers(s.Topo)
		}
		jobs := make([]experiments.Job, len(breakers))
		for i, b := range breakers {
			j := base
			j.Breakers = []string{b}
			jobs[i] = j
		}
		return jobs
	}
	jobs := make([]experiments.Job, len(s.Sim.Rates))
	for i, rate := range s.Sim.Rates {
		j := base
		j.Kind = experiments.KindSim
		j.Rate = rate
		j.Variation = s.Sim.Variation
		j.Warmup = s.Sim.Warmup
		j.Measure = s.Sim.Measure
		j.Seed = s.Sim.Seed
		j.SimWorkers = s.Sim.Workers
		jobs[i] = j
	}
	return jobs
}
