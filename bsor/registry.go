package bsor

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/cdg"
	"repro/internal/experiments"
	"repro/internal/flowgraph"
	"repro/internal/topology"
)

// Flow is one application data transfer of a caller-defined workload:
// all packets from node Src to node Dst with an estimated bandwidth
// demand (MB/s throughout this API).
type Flow struct {
	// Name is a diagnostic label; empty names are filled in as "f<i>".
	Name string `json:"name,omitempty"`
	// Src and Dst are node ids in [0, nodes).
	Src int `json:"src"`
	Dst int `json:"dst"`
	// Demand is the estimated bandwidth of the transfer (MB/s).
	Demand float64 `json:"demand"`
}

// TopoInfo describes the topology a registered workload is being built
// for, without exposing the internal topology object.
type TopoInfo struct {
	// Nodes is the node count; node ids are 0..Nodes-1.
	Nodes int
	// Grid reports whether the topology is an orthogonal grid; Width and
	// Height are its dimensions when it is (0 otherwise).
	Grid          bool
	Width, Height int
}

// WorkloadFunc builds a caller-defined workload's flows for a topology.
// demand is the Spec's per-flow demand request (0 means the caller's own
// default). Flows must have Src != Dst, ids in range, and non-negative
// demands; the pipeline validates and rejects violations per job.
type WorkloadFunc func(t TopoInfo, demand float64) ([]Flow, error)

var workloadReg = struct {
	sync.RWMutex
	m map[string]WorkloadFunc
}{m: map[string]WorkloadFunc{}}

// RegisterWorkload adds a named caller-defined workload to the registry,
// making the name usable in Spec.Workload alongside the built-ins.
// Names must be non-empty and must not collide with a built-in or an
// earlier registration.
func RegisterWorkload(name string, fn WorkloadFunc) error {
	if name == "" || fn == nil {
		return &SpecError{Field: "workload", Reason: "RegisterWorkload needs a non-empty name and a non-nil function"}
	}
	for _, b := range builtinWorkloads() {
		if b == name {
			return &SpecError{Field: "workload", Reason: fmt.Sprintf("%q is a built-in workload", name)}
		}
	}
	workloadReg.Lock()
	defer workloadReg.Unlock()
	if _, dup := workloadReg.m[name]; dup {
		return &SpecError{Field: "workload", Reason: fmt.Sprintf("workload %q already registered", name)}
	}
	workloadReg.m[name] = fn
	return nil
}

func builtinWorkloads() []string {
	return append(experiments.WorkloadNames(), "rand-perm")
}

// Workloads lists every workload name a Spec may use: the six thesis
// workloads, the seeded random permutation, and every registered
// workload, sorted with the built-ins first.
func Workloads() []string {
	names := builtinWorkloads()
	workloadReg.RLock()
	var custom []string
	for name := range workloadReg.m {
		custom = append(custom, name)
	}
	workloadReg.RUnlock()
	sort.Strings(custom)
	return append(names, custom...)
}

// knownWorkload reports whether name resolves to a built-in or
// registered workload.
func knownWorkload(name string) bool {
	for _, b := range builtinWorkloads() {
		if b == name {
			return true
		}
	}
	workloadReg.RLock()
	_, ok := workloadReg.m[name]
	workloadReg.RUnlock()
	return ok
}

// registryHook adapts the workload registry to the engine's resolver
// hook: it is consulted for names the built-in set does not know.
func registryHook(t topology.Topology, name string, demand float64) ([]flowgraph.Flow, error) {
	workloadReg.RLock()
	fn := workloadReg.m[name]
	workloadReg.RUnlock()
	if fn == nil {
		return nil, &experiments.UnknownWorkloadError{Name: name}
	}
	info := TopoInfo{Nodes: t.NumNodes()}
	if g, ok := t.(topology.Grid); ok {
		info.Grid, info.Width, info.Height = true, g.Width(), g.Height()
	}
	flows, err := fn(info, demand)
	if err != nil {
		return nil, err
	}
	out := make([]flowgraph.Flow, len(flows))
	for i, f := range flows {
		badFlow := func(reason string, args ...any) error {
			return &SpecError{Field: "workload",
				Reason: fmt.Sprintf("registered workload %q flow %d %s", name, i, fmt.Sprintf(reason, args...))}
		}
		switch {
		case f.Src < 0 || f.Src >= info.Nodes || f.Dst < 0 || f.Dst >= info.Nodes:
			return nil, badFlow("has endpoints (%d -> %d) outside [0,%d)", f.Src, f.Dst, info.Nodes)
		case f.Src == f.Dst:
			return nil, badFlow("has equal endpoints")
		case f.Demand < 0:
			return nil, badFlow("has negative demand %g", f.Demand)
		}
		fname := f.Name
		if fname == "" {
			fname = fmt.Sprintf("f%d", i)
		}
		out[i] = flowgraph.Flow{ID: i, Name: fname,
			Src: topology.NodeID(f.Src), Dst: topology.NodeID(f.Dst), Demand: f.Demand}
	}
	return out, nil
}

// Algorithms lists the routing algorithm names a Spec may use: the BSOR
// variants (which explore acyclic CDGs and take a breaker list), the
// grid-only oblivious baselines, and the graph-generic shortest path.
func Algorithms() []string {
	return []string{
		"BSOR-Dijkstra", "BSOR-MILP", "BSOR-Heuristic",
		"XY", "YX", "ROMM", "Valiant", "O1TURN", "SP",
	}
}

// NormalizeAlgorithm resolves a case-insensitive algorithm name to its
// canonical form ("bsor-milp" -> "BSOR-MILP"); unknown names yield a
// *SpecError.
func NormalizeAlgorithm(name string) (string, error) {
	for _, a := range Algorithms() {
		if strings.EqualFold(a, name) {
			return a, nil
		}
	}
	return "", &SpecError{Field: "algorithm",
		Reason: fmt.Sprintf("unknown algorithm %q (known: %s)", name, strings.Join(Algorithms(), ", "))}
}

// isBSOR reports whether a canonical algorithm name is a BSOR variant
// (and thus explores a breaker list).
func isBSOR(name string) bool { return strings.HasPrefix(name, "BSOR-") }

// DefaultBreakers returns the acyclic-CDG strategies a BSOR spec
// explores on t when Spec.Breakers is empty: the standard fifteen
// (twelve turn-model rules plus three ad hoc seeds) on a mesh, the
// twelve dateline rules on a torus, and the graph-generic up*/down* set
// (plain and escape-layered, several spanning roots) on every other
// kind.
func DefaultBreakers(t Topology) []string {
	spec := t.spec()
	switch {
	case t.Kind == "torus":
		return experiments.DatelineBreakerNames()
	case spec.IsGrid():
		return experiments.BreakerNames(cdg.StandardBreakers())
	default:
		return experiments.GraphBreakerNames(spec.NumNodes())
	}
}

// KnownBreaker reports whether name resolves to a cycle-breaking
// strategy: one of the named mesh/torus breakers or the parametric
// graph-generic families "updown@<root>" and "updown-escape@<root>".
func KnownBreaker(name string) bool {
	_, err := experiments.BreakerByName(name)
	return err == nil
}
