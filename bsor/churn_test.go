package bsor

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/topology"
)

func TestChurnSpecJSONRoundTrip(t *testing.T) {
	specs := []ChurnSpec{
		{Topo: Mesh(6, 6), Workload: "rand-perm", Rate: 0.3, Faults: 2},
		{Name: "churn-16", Topo: Mesh(16, 16), Workload: "transpose", Rate: 0.4,
			Warmup: 4000, Measure: 40000, Seed: 11,
			Faults: 4, FaultSeed: 7, FaultStart: 6048, FaultSpacing: 8192,
			RecoveryWindow: 2048, Requeue: true, Resynth: "milp-warm", MeasureCold: true},
	}
	for i, s := range specs {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("spec %d: marshal: %v", i, err)
		}
		var back ChurnSpec
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("spec %d: unmarshal: %v", i, err)
		}
		if !reflect.DeepEqual(s, back) {
			t.Errorf("spec %d did not round-trip:\n%+v\n%+v", i, s, back)
		}
	}
}

// TestChurnSpecValidation is the table-driven rejection surface of
// ChurnSpec.Validate: each bad spec must yield a *SpecError naming the
// offending field.
func TestChurnSpecValidation(t *testing.T) {
	good := ChurnSpec{Topo: Mesh(6, 6), Workload: "rand-perm", Rate: 0.3, Faults: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name  string
		mut   func(*ChurnSpec)
		field string
	}{
		{"unknown topo kind", func(s *ChurnSpec) { s.Topo.Kind = "hypercube" }, "topo"},
		{"negative topo param", func(s *ChurnSpec) { s.Topo.Width = -1 }, "topo"},
		{"missing workload", func(s *ChurnSpec) { s.Workload = "" }, "workload"},
		{"unknown workload", func(s *ChurnSpec) { s.Workload = "nonesuch" }, "workload"},
		{"bad vcs", func(s *ChurnSpec) { s.VCs = 64 }, "vcs"},
		{"negative demand", func(s *ChurnSpec) { s.Demand = -1 }, "demand"},
		{"negative capacity", func(s *ChurnSpec) { s.Capacity = -1 }, "capacity"},
		{"zero rate", func(s *ChurnSpec) { s.Rate = 0 }, "rate"},
		{"negative cycles", func(s *ChurnSpec) { s.Measure = -1 }, "sim"},
		{"negative sim workers", func(s *ChurnSpec) { s.SimWorkers = -1 }, "sim"},
		{"absurd sim workers", func(s *ChurnSpec) { s.SimWorkers = 4096 }, "sim"},
		{"negative faults", func(s *ChurnSpec) { s.Faults = -1 }, "faults"},
		{"negative spacing", func(s *ChurnSpec) { s.FaultSpacing = -1 }, "faults"},
		{"unknown resynth", func(s *ChurnSpec) { s.Resynth = "annealing" }, "resynth"},
	}
	for _, tc := range cases {
		s := good
		tc.mut(&s)
		err := s.Validate()
		var se *SpecError
		if !errors.As(err, &se) {
			t.Errorf("%s: got %v (%T), want *SpecError", tc.name, err, err)
			continue
		}
		if se.Field != tc.field {
			t.Errorf("%s: field %q, want %q (%v)", tc.name, se.Field, tc.field, err)
		}
	}
}

// TestTooManyFaultsSurfaced pins how an over-budget fault count on a
// faulted topology surfaces through the façade: labels parse fine (the
// budget depends on connectivity, not syntax), and at run time the typed
// topology.TooManyFaultsError arrives wrapped in a *SpecError on the
// "topo" field — from the pipeline and from RunChurn alike.
func TestTooManyFaultsSurfaced(t *testing.T) {
	cases := []struct {
		label   string
		tooMany bool
	}{
		{"faulted-mesh4x4-f3-s1", false},
		{"faulted-mesh4x4-f50-s1", true},
		{"faulted-torus4x4-f99-s2", true},
	}
	for _, tc := range cases {
		topo, err := ParseTopology(tc.label)
		if err != nil {
			t.Fatalf("%s: ParseTopology: %v", tc.label, err)
		}

		check := func(op string, err error) {
			t.Helper()
			if !tc.tooMany {
				if err != nil {
					t.Errorf("%s: %s: unexpected error %v", tc.label, op, err)
				}
				return
			}
			var se *SpecError
			if !errors.As(err, &se) || se.Field != "topo" {
				t.Errorf("%s: %s: got %v (%T), want *SpecError on field topo", tc.label, op, err, err)
				return
			}
			var tooMany *topology.TooManyFaultsError
			if !errors.As(err, &tooMany) {
				t.Errorf("%s: %s: *SpecError does not wrap *TooManyFaultsError: %v", tc.label, op, err)
			} else if tooMany.Requested == 0 || tooMany.Removable >= tooMany.Requested {
				t.Errorf("%s: %s: implausible TooManyFaultsError %+v", tc.label, op, *tooMany)
			}
		}

		// Through the synthesis pipeline.
		_, err = Synthesize(context.Background(), Spec{Topo: topo, Workload: "rand-perm"})
		check("Synthesize", err)

		// Through a churn run (per-result error).
		results, err := RunChurn(context.Background(), []ChurnSpec{{
			Topo: topo, Workload: "rand-perm", Rate: 0.2, Faults: 1,
			Measure: 12000,
		}})
		if err != nil {
			t.Fatalf("%s: RunChurn: %v", tc.label, err)
		}
		check("RunChurn", results[0].Err)
	}
}

// TestRunChurnFacade runs one small churn spec end to end through the
// public surface.
func TestRunChurnFacade(t *testing.T) {
	results, err := RunChurn(context.Background(), []ChurnSpec{{
		Name: "smoke", Topo: Mesh(6, 6), Workload: "rand-perm",
		Rate: 0.3, Seed: 11, Faults: 2, FaultSeed: 3,
	}}, WithWorkers(2))
	if err != nil {
		t.Fatalf("RunChurn: %v", err)
	}
	res := results[0]
	if res.Err != nil {
		t.Fatalf("spec failed: %v", res.Err)
	}
	if res.MCL <= 0 {
		t.Errorf("MCL %v, want positive", res.MCL)
	}
	if res.Point == nil || res.Point.Delivered == 0 {
		t.Fatalf("nothing delivered: %+v", res.Point)
	}
	if len(res.Events) != 2 {
		t.Fatalf("%d events, want 2", len(res.Events))
	}
	for i, ev := range res.Events {
		if ev.EscapeEpoch == 0 || ev.CommitEpoch <= ev.EscapeEpoch {
			t.Errorf("event %d: epochs escape=%d commit=%d", i, ev.EscapeEpoch, ev.CommitEpoch)
		}
		if ev.ResynthWall <= 0 {
			t.Errorf("event %d: no resynth wall time", i)
		}
	}
	// The point's churn aggregates summarize the worst event.
	var worstDip float64
	for _, ev := range res.Events {
		if ev.ThroughputDip > worstDip {
			worstDip = ev.ThroughputDip
		}
	}
	if res.Point.ThroughputDip != worstDip {
		t.Errorf("point dip %v != worst event dip %v", res.Point.ThroughputDip, worstDip)
	}
	// Wall clocks must never leak into the metrics JSON.
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if s := string(b); strings.Contains(s, "Wall") || strings.Contains(s, "wall") {
		t.Errorf("wall-clock field leaked into JSON: %s", s)
	}
}

func TestRunChurnRejectsInvalidSpec(t *testing.T) {
	_, err := RunChurn(context.Background(), []ChurnSpec{{Topo: Mesh(4, 4), Workload: "rand-perm"}})
	var se *SpecError
	if !errors.As(err, &se) || se.Field != "rate" {
		t.Fatalf("got %v, want *SpecError on rate", err)
	}
	if _, err := RunChurn(context.Background(), nil); err == nil {
		t.Fatalf("empty spec list accepted")
	}
}
