package repro

// Route-synthesis benchmarks behind scripts/bench_route.sh and
// BENCH_route.json. BenchmarkRouteSynthesis times the synthesis jobs the
// experiment engine actually runs:
//
//   - milp-dense:  the 8x8 transpose BSOR-MILP table job on the pre-rework
//     path — dense-tableau LP relaxations, no basis warm starts, serial
//     candidate enumeration (the seed behavior, kept behind
//     MILPSelector.DenseLP / Workers=1).
//   - milp-sparse: the same job on the reworked stack — sparse revised
//     simplex, children warm-started from the parent basis, parallel
//     deduplicated candidate enumeration.
//   - heuristic-16: the 16x16 mesh and torus synthesis-scale jobs under
//     BSORHeuristic, which the acceptance bar holds to sub-second MCL-job
//     latency (reported as ms/op).
//
// Each iteration reports the achieved MCL so a speedup can never silently
// ride on a quality regression.

import (
	"testing"

	"repro/internal/cdg"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/route"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// synthesisMILP is the smoke-budget MILP of cmd/experiments -fast (the
// budget CI actually runs), spelled out so the dense twin differs only in
// engine, worker count, and the formulation extras gated behind the
// baseline flag.
func synthesisMILP(dense bool) route.Selector {
	sel := route.MILPSelector{HopSlack: 2, MaxPathsPerFlow: 8, Refinements: 2,
		MaxNodes: 40, Gap: 0.01}
	if dense {
		sel.DenseLP = true
		sel.Workers = 1
	}
	return sel
}

func datelineBreakers(b *testing.B) []cdg.Breaker {
	names := experiments.DatelineBreakerNames()
	out := make([]cdg.Breaker, len(names))
	for i, n := range names {
		br, err := experiments.BreakerByName(n)
		if err != nil {
			b.Fatal(err)
		}
		out[i] = br
	}
	return out
}

func benchSynthesis(b *testing.B, g topology.Grid, sel route.Selector, breakers []cdg.Breaker) {
	flows, err := traffic.Transpose(g, traffic.DefaultSyntheticDemand)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{VCs: 2, Selector: sel, Breakers: breakers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set, _, err := core.Best(g, flows, cfg)
		if err != nil {
			b.Fatal(err)
		}
		mcl, _ := set.MCL()
		b.ReportMetric(mcl, "MCL")
	}
}

// BenchmarkRouteSynthesis times route synthesis end to end (candidate
// enumeration + CDG exploration + selection) for the jobs quoted in
// BENCH_route.json.
func BenchmarkRouteSynthesis(b *testing.B) {
	// The 8x8 MILP pair is one Table 6.1 cell — transpose under the
	// negative-first CDG, the cell whose synthesis a table job caches —
	// solved by the seed stack (dense) and the reworked stack (sparse).
	// The 16x16 jobs are the synth16 scenario jobs: the mesh explores the
	// five table CDGs, the torus its twelve dateline CDGs.
	negFirst := experiments.TableBreakers()[2:3]
	b.Run("mesh8x8-transpose-milp-dense", func(b *testing.B) {
		benchSynthesis(b, topology.NewMesh(8, 8), synthesisMILP(true), negFirst)
	})
	b.Run("mesh8x8-transpose-milp-sparse", func(b *testing.B) {
		benchSynthesis(b, topology.NewMesh(8, 8), synthesisMILP(false), negFirst)
	})
	b.Run("mesh16x16-transpose-heuristic", func(b *testing.B) {
		benchSynthesis(b, topology.NewMesh(16, 16),
			route.BSORHeuristic{HopSlack: 2, MaxPathsPerFlow: 32}, experiments.TableBreakers())
	})
	b.Run("torus16x16-transpose-heuristic", func(b *testing.B) {
		benchSynthesis(b, topology.NewTorus(16, 16),
			route.BSORHeuristic{HopSlack: 2, MaxPathsPerFlow: 32}, datelineBreakers(b))
	})
}
