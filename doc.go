// Package repro is a Go reproduction of "Application-Aware Deadlock-Free
// Oblivious Routing" (Michel A. Kinsy, MIT, 2009): the BSOR framework for
// bandwidth-sensitive oblivious routing in networks-on-chip, together with
// every substrate its evaluation depends on — topologies from grids to
// arbitrary directed graphs (rings, full meshes, folded-Clos fabrics,
// fault-degraded grids), channel dependence graphs with turn-model and
// graph-generic up*/down* cycle breaking, an LP/MILP solver, Dijkstra-
// and MILP-based route selectors, the classic oblivious baselines, the
// evaluation workloads, and a cycle-accurate wormhole virtual-channel
// network simulator.
//
// The public entry point is the bsor package (import "repro/bsor"):
// declarative JSON-round-trippable Specs, a context-aware streaming
// Pipeline, typed errors, and name-based registries for algorithms,
// workloads, and CDG breakers. Everything else lives under internal/;
// the cmd tools and examples are thin clients of the façade.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-versus-measured results.
// The evaluation runs on the concurrent sweep engine of
// internal/experiments: declarative job lists executed on a worker pool
// with memoized route synthesis and per-job seeding, so results are
// deterministic for any worker count. The root-level benchmarks
// (bench_test.go) regenerate each table and figure of the thesis'
// evaluation chapter; cmd/experiments prints them in full and emits
// machine-readable JSON with -json.
package repro
