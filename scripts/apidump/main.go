// Command apidump prints the exported API surface of a Go package
// directory in a stable, sorted, one-declaration-per-block text form —
// the repository's stand-in for apidiff (which the build environment
// cannot fetch). scripts/api_check.sh diffs its output against the
// committed baseline so pull requests cannot silently change the public
// repro/bsor surface.
//
// Usage:
//
//	apidump <package-dir>
//
// The dump is purely syntactic (go/ast, no type checking): exported
// consts, vars, funcs, types, and methods on exported receivers, with
// unexported struct fields and interface embeddings elided. Doc comments
// and declaration bodies are dropped, so only signature changes show up
// in a diff.
package main

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: apidump <package-dir>")
		os.Exit(2)
	}
	decls, err := dump(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "apidump:", err)
		os.Exit(1)
	}
	for _, d := range decls {
		fmt.Println(d)
	}
}

// dump parses every non-test file of dir and returns the sorted
// exported declarations.
func dump(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, pkg := range pkgs {
		// Deterministic file order.
		files := make([]string, 0, len(pkg.Files))
		for name := range pkg.Files {
			files = append(files, name)
		}
		sort.Strings(files)
		for _, name := range files {
			for _, decl := range pkg.Files[name].Decls {
				out = append(out, exported(fset, decl)...)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// exported renders the exported parts of one top-level declaration.
func exported(fset *token.FileSet, decl ast.Decl) []string {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedRecv(d) {
			return nil
		}
		fn := *d
		fn.Body = nil
		fn.Doc = nil
		return []string{render(fset, &fn)}
	case *ast.GenDecl:
		var out []string
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				ts := *s
				ts.Doc, ts.Comment = nil, nil
				elideUnexported(&ts)
				out = append(out, render(fset, &ast.GenDecl{Tok: token.TYPE, Specs: []ast.Spec{&ts}}))
			case *ast.ValueSpec:
				vs := ast.ValueSpec{Type: s.Type}
				for _, n := range s.Names {
					if n.IsExported() {
						vs.Names = append(vs.Names, n)
					}
				}
				if len(vs.Names) == 0 {
					continue
				}
				// Values are API only insofar as they exist and have a
				// type; initializer expressions are elided.
				out = append(out, render(fset, &ast.GenDecl{Tok: d.Tok, Specs: []ast.Spec{&vs}}))
			}
		}
		return out
	}
	return nil
}

// exportedRecv reports whether a method's receiver type is exported
// (true for plain functions).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// elideUnexported drops unexported struct fields and interface methods
// from a type spec, so internal layout changes do not churn the dump.
func elideUnexported(ts *ast.TypeSpec) {
	switch t := ts.Type.(type) {
	case *ast.StructType:
		if t.Fields == nil {
			return
		}
		var kept []*ast.Field
		for _, f := range t.Fields.List {
			ff := *f
			ff.Doc, ff.Comment = nil, nil
			if len(f.Names) == 0 {
				kept = append(kept, &ff) // embedded field: keep
				continue
			}
			var names []*ast.Ident
			for _, n := range f.Names {
				if n.IsExported() {
					names = append(names, n)
				}
			}
			if len(names) == 0 {
				continue
			}
			ff.Names = names
			kept = append(kept, &ff)
		}
		t.Fields = &ast.FieldList{List: kept}
	case *ast.InterfaceType:
		if t.Methods == nil {
			return
		}
		var kept []*ast.Field
		for _, f := range t.Methods.List {
			ff := *f
			ff.Doc, ff.Comment = nil, nil
			if len(f.Names) == 1 && !f.Names[0].IsExported() {
				continue
			}
			kept = append(kept, &ff)
		}
		t.Methods = &ast.FieldList{List: kept}
	}
}

// render prints a node on one logical block with normalized whitespace.
func render(fset *token.FileSet, node any) string {
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.RawFormat}
	if err := cfg.Fprint(&buf, fset, node); err != nil {
		return fmt.Sprintf("apidump-error: %v", err)
	}
	// Collapse to one line so the dump diffs line-by-line per decl.
	fields := strings.Fields(buf.String())
	return strings.Join(fields, " ")
}
