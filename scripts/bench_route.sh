#!/usr/bin/env bash
# bench_route.sh — run the route-synthesis benchmarks and emit BENCH_route.json.
#
# Usage:  scripts/bench_route.sh [output.json]
#   BENCHTIME=3x scripts/bench_route.sh     # more iterations for stable numbers
#
# BenchmarkRouteSynthesis times the synthesis jobs of the experiment engine:
# the 8x8 transpose BSOR-MILP table cell on the seed stack (dense-tableau
# LP, serial candidate enumeration, no warm starts — MILPSelector.DenseLP)
# versus the reworked stack (sparse revised simplex, basis-warm-started
# branch and bound, bound propagation, parallel deduplicated enumeration),
# plus the 16x16 mesh/torus BSOR-Heuristic synthesis-scale jobs. The JSON
# records ms per job, the dense/sparse speedup, and whether the heuristic
# meets its sub-second 16x16 budget. EXPERIMENTS.md quotes these numbers;
# CI runs the same benchmarks with -benchtime=1x as a smoke check.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_route.json}"
BENCHTIME="${BENCHTIME:-1x}"

raw="$(go test -run '^$' -bench 'BenchmarkRouteSynthesis' -benchtime "$BENCHTIME" .)"
echo "$raw"

echo "$raw" | awk -v out="$OUT" '
/^BenchmarkRouteSynthesis\// {
    name = $1
    sub(/^BenchmarkRouteSynthesis\//, "", name)
    sub(/-[0-9]+$/, "", name)
    ns = mcl = ""
    for (i = 1; i <= NF; i++) {
        if ($i == "ns/op") ns  = $(i - 1)
        if ($i == "MCL")   mcl = $(i - 1)
    }
    if (ns != "") {
        names[++n] = name
        millis[name] = ns / 1e6
        mcls[name] = mcl
    }
}
END {
    printf "{\n" > out
    printf "  \"benchmark\": \"BenchmarkRouteSynthesis (8x8 transpose MILP table cell: seed dense stack vs sparse+warm-start stack; 16x16 heuristic synthesis-scale jobs)\",\n" >> out
    printf "  \"results\": [\n" >> out
    for (i = 1; i <= n; i++) {
        name = names[i]
        printf "    {\"job\": \"%s\", \"ms_per_job\": %.1f, \"mcl\": %s}%s\n", \
            name, millis[name], (mcls[name] != "" ? mcls[name] : "null"), (i < n ? "," : "") >> out
    }
    printf "  ],\n" >> out
    d = millis["mesh8x8-transpose-milp-dense"]
    s = millis["mesh8x8-transpose-milp-sparse"]
    if (d != "" && s != "" && s > 0)
        printf "  \"speedup_milp_dense_vs_sparse\": %.2f,\n", d / s >> out
    else
        printf "  \"speedup_milp_dense_vs_sparse\": null,\n" >> out
    h = millis["mesh16x16-transpose-heuristic"]
    if (h != "")
        printf "  \"heuristic_mesh16x16_under_1s\": %s\n", (h < 1000 ? "true" : "false") >> out
    else
        printf "  \"heuristic_mesh16x16_under_1s\": null\n" >> out
    printf "}\n" >> out
}
'
echo "wrote $OUT"
