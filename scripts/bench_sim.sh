#!/usr/bin/env bash
# bench_sim.sh — run the simulator micro-benchmarks and emit BENCH_sim.json.
#
# Usage:  scripts/bench_sim.sh [output.json]
#   BENCHTIME=5x scripts/bench_sim.sh     # more iterations for stable numbers
#
# The JSON records cycles/sec and flit-hops/sec per benchmarked
# configuration — sequential and sharded-parallel (-wN rows, see
# DESIGN.md §15) — plus the captured seed-core baseline (the pre-refactor
# full-scan core, commit 1e6e2ee, measured on the same 16x16 transpose
# latency curve in the reference container) and the resulting speedup.
# The host CPU count rides along: parallel rows only show speedup with
# real cores underneath; on a single-core host they measure barrier
# overhead instead. EXPERIMENTS.md quotes these numbers; CI runs the same
# benchmarks with -benchtime=1x as a smoke check.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_sim.json}"
BENCHTIME="${BENCHTIME:-2x}"

# Seed-core baseline: cycles/sec of the pre-refactor core on the
# mesh16x16 curve (5 rate points x 12k cycles), captured before the
# data-oriented rewrite (3-iteration go test -bench measurement).
BASELINE_16=13743

raw="$(go test -run '^$' -bench 'BenchmarkSimCycles' -benchtime "$BENCHTIME" .)"
echo "$raw"

echo "$raw" | awk -v out="$OUT" -v base="$BASELINE_16" -v ncpu="$(nproc)" '
/^BenchmarkSimCycles\// {
    name = $1
    sub(/^BenchmarkSimCycles\//, "", name)
    sub(/-[0-9]+$/, "", name)
    cyc = hops = ""
    for (i = 1; i <= NF; i++) {
        if ($i == "cycles/sec")   cyc  = $(i - 1)
        if ($i == "flithops/sec") hops = $(i - 1)
    }
    if (cyc != "") {
        names[++n] = name
        cycles[name] = cyc
        flithops[name] = hops
    }
}
END {
    printf "{\n" > out
    printf "  \"benchmark\": \"BenchmarkSimCycles (offered-rate curves 2,10,20,40,60 at 2k+10k cycles, 2 VCs; mesh rows: transpose over XY; clos row: rand-perm over SP; -wN rows: N sim workers, byte-identical results)\",\n" >> out
    printf "  \"host_cpus\": %d,\n", ncpu >> out
    printf "  \"results\": [\n" >> out
    for (i = 1; i <= n; i++) {
        name = names[i]
        printf "    {\"config\": \"%s\", \"cycles_per_sec\": %.0f, \"flit_hops_per_sec\": %.0f}%s\n", \
            name, cycles[name], flithops[name], (i < n ? "," : "") >> out
    }
    printf "  ],\n" >> out
    printf "  \"seed_core_baseline\": {\n" >> out
    printf "    \"topology\": \"mesh16x16\",\n" >> out
    printf "    \"cycles_per_sec\": %d,\n", base >> out
    printf "    \"source\": \"pre-refactor full-scan core (commit 1e6e2ee), same curve, reference container\"\n" >> out
    printf "  },\n" >> out
    if (cycles["mesh16x16"] != "")
        printf "  \"speedup_mesh16x16_vs_seed_core\": %.2f,\n", cycles["mesh16x16"] / base >> out
    else
        printf "  \"speedup_mesh16x16_vs_seed_core\": null,\n" >> out
    if (cycles["mesh16x16"] != "" && cycles["mesh16x16-w4"] != "")
        printf "  \"speedup_mesh16x16_w4_vs_sequential\": %.2f\n", cycles["mesh16x16-w4"] / cycles["mesh16x16"] >> out
    else
        printf "  \"speedup_mesh16x16_w4_vs_sequential\": null\n" >> out
    printf "}\n" >> out
}
'
echo "wrote $OUT"
