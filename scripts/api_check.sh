#!/usr/bin/env bash
# api_check.sh — guard the public repro/bsor API surface.
#
# Compares the current exported API of ./bsor (as rendered by
# scripts/apidump, an AST-level stand-in for apidiff) against the
# committed baseline scripts/api_baseline.txt. CI runs it on every pull
# request, so the public surface cannot change silently.
#
#   scripts/api_check.sh           # verify (exit 1 on drift)
#   scripts/api_check.sh -update   # refresh the baseline after an
#                                  # intentional API change
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=scripts/api_baseline.txt
current=$(mktemp)
trap 'rm -f "$current"' EXIT

go run ./scripts/apidump ./bsor > "$current"

if [ "${1:-}" = "-update" ]; then
    cp "$current" "$baseline"
    echo "api_check: baseline refreshed ($(wc -l < "$baseline") declarations)"
    exit 0
fi

if ! diff -u "$baseline" "$current"; then
    echo >&2
    echo "api_check: the public repro/bsor API surface changed." >&2
    echo "If intentional, refresh the baseline:  scripts/api_check.sh -update" >&2
    exit 1
fi
echo "api_check: public bsor API unchanged ($(wc -l < "$baseline") declarations)"
