#!/usr/bin/env bash
# daemon_smoke.sh — end-to-end smoke test of the bsord daemon.
#
# Builds bsord and bsordload, boots the daemon on a free port, and
# checks the service contract a client depends on:
#
#   1. /healthz answers 200 "ok".
#   2. /v1/synthesize on the committed smoke spec returns the committed
#      golden body, byte for byte (cmd/bsord/testdata/) — this is the
#      cross-process half of the byte-identity guarantee; the in-process
#      half lives in internal/server tests.
#   3. A thundering-herd load run (identical specs) stays inside its
#      p99 / error-rate / dedup budgets and observes one body per key.
#   4. SIGTERM drains cleanly: the daemon logs "drained cleanly" and
#      exits 0 within the drain deadline.
#
# Usage:  scripts/daemon_smoke.sh
#   CLIENTS=200 N=2000 P99=5s scripts/daemon_smoke.sh   # heavier run
set -euo pipefail
cd "$(dirname "$0")/.."

CLIENTS="${CLIENTS:-100}"
N="${N:-1000}"
P99="${P99:-10s}"

workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill -KILL "$daemon_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/bsord" ./cmd/bsord
go build -o "$workdir/bsordload" ./cmd/bsordload

"$workdir/bsord" -addr 127.0.0.1:0 >"$workdir/bsord.out" 2>"$workdir/bsord.err" &
daemon_pid=$!

# The daemon prints its bound address to stdout once listening.
url=""
for _ in $(seq 1 50); do
    url=$(sed -n 's/^bsord: listening on //p' "$workdir/bsord.out")
    [ -n "$url" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { cat "$workdir/bsord.err" >&2; echo "daemon_smoke: bsord died on startup" >&2; exit 1; }
    sleep 0.1
done
[ -n "$url" ] || { echo "daemon_smoke: bsord never reported its address" >&2; exit 1; }
echo "daemon_smoke: bsord up at $url (pid $daemon_pid)"

# 1. Health.
health=$(curl -fsS "$url/healthz")
echo "$health" | grep -q '"ok"' || { echo "daemon_smoke: unexpected /healthz body: $health" >&2; exit 1; }

# 2. Golden synthesis body, byte for byte.
curl -fsS -X POST "$url/v1/synthesize" \
    --data-binary @cmd/bsord/testdata/synthesize-smoke.spec.json \
    -o "$workdir/synthesize.json"
diff cmd/bsord/testdata/synthesize-smoke.golden.json "$workdir/synthesize.json" || {
    echo "daemon_smoke: /v1/synthesize drifted from the committed golden body" >&2
    echo "If intentional, refresh it: curl -s -X POST <url>/v1/synthesize --data-binary @cmd/bsord/testdata/synthesize-smoke.spec.json > cmd/bsord/testdata/synthesize-smoke.golden.json" >&2
    exit 1
}
echo "daemon_smoke: /v1/synthesize matches the golden body"

# 3. Thundering-herd load under budgets (self-asserting: exits 1 on
# violation). The first request above warmed the cache, so the herd
# must be ~100% deduplicated.
"$workdir/bsordload" -url "$url" -clients "$CLIENTS" -n "$N" \
    -p99-budget "$P99" -max-error-rate 0 -min-dedup 0.9

# 4. Graceful drain.
kill -TERM "$daemon_pid"
for _ in $(seq 1 100); do
    kill -0 "$daemon_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$daemon_pid" 2>/dev/null; then
    echo "daemon_smoke: bsord still running 10s after SIGTERM" >&2
    exit 1
fi
wait "$daemon_pid" && status=0 || status=$?
daemon_pid=""
[ "$status" -eq 0 ] || { cat "$workdir/bsord.err" >&2; echo "daemon_smoke: bsord exited $status on drain" >&2; exit 1; }
grep -q "drained cleanly" "$workdir/bsord.err" || { cat "$workdir/bsord.err" >&2; echo "daemon_smoke: no clean-drain log line" >&2; exit 1; }
echo "daemon_smoke: SIGTERM drained cleanly"
echo "daemon_smoke: PASS"
