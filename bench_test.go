package repro

// One benchmark per table and figure of the thesis' evaluation (chapter
// 6). Each bench regenerates its artifact end to end — route synthesis
// plus, for the figures, cycle-accurate simulation — on reduced cycle
// budgets so the whole suite completes in minutes; cmd/experiments runs
// the same code at the published 20k+100k cycle counts. Custom metrics
// report the headline number of each artifact (best MCL, or saturation
// throughput) so regressions in reproduction quality show up in benchmark
// output, not just in runtime.

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func benchMILP() route.Selector {
	return route.MILPSelector{HopSlack: 2, MaxPathsPerFlow: 8, Refinements: 2,
		MaxNodes: 40, Gap: 0.01}
}

func benchParams() experiments.SimParams {
	return experiments.SimParams{VCs: 2, WarmupCycles: 2000, MeasureCycles: 10000, Seed: 1}
}

func benchRates() []float64 { return []float64{10, 30, 50} }

// minPositive returns the smallest non-negative MCL of a table row.
func minPositive(vals []float64) float64 {
	best := -1.0
	for _, v := range vals {
		if v >= 0 && (best < 0 || v < best) {
			best = v
		}
	}
	return best
}

// BenchmarkTable61 regenerates Table 6.1: minimum MCL per acyclic CDG
// under BSOR_MILP for all six workloads.
func BenchmarkTable61(b *testing.B) {
	m := topology.NewMesh(8, 8)
	for i := 0; i < b.N; i++ {
		rows := experiments.TableCDGExploration(m, benchMILP(), 2)
		for _, r := range rows {
			if r.Workload == "transpose" {
				b.ReportMetric(minPositive(r.MCL), "transposeMCL")
			}
			if r.Workload == "h264" {
				b.ReportMetric(minPositive(r.MCL), "h264MCL")
			}
		}
	}
}

// BenchmarkTable62 regenerates Table 6.2: minimum MCL per acyclic CDG
// under BSOR_Dijkstra.
func BenchmarkTable62(b *testing.B) {
	m := topology.NewMesh(8, 8)
	for i := 0; i < b.N; i++ {
		rows := experiments.TableCDGExploration(m, route.DijkstraSelector{}, 2)
		for _, r := range rows {
			if r.Workload == "transpose" {
				b.ReportMetric(minPositive(r.MCL), "transposeMCL")
			}
		}
	}
}

// BenchmarkTable63 regenerates Table 6.3: MCL of XY, YX, ROMM, Valiant,
// BSOR_MILP and BSOR_Dijkstra on every workload.
func BenchmarkTable63(b *testing.B) {
	m := topology.NewMesh(8, 8)
	for i := 0; i < b.N; i++ {
		rows := experiments.Table63(m, benchMILP(), route.DijkstraSelector{}, 2, experiments.TableBreakers())
		for _, r := range rows {
			if r.Workload == "transpose" {
				// Column order: XY, YX, ROMM, Valiant, BSOR-MILP, BSOR-Dijkstra.
				b.ReportMetric(r.MCL[0], "XY")
				b.ReportMetric(r.MCL[5], "BSORDijkstra")
			}
		}
	}
}

// benchFigure runs one throughput/latency sweep figure and reports the
// BSOR-Dijkstra and XY saturation throughput.
func benchFigure(b *testing.B, workload string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := &experiments.Runner{MILP: benchMILP()}
		series, err := r.FigureSweep(experiments.MeshSpec(8, 8), workload,
			experiments.FigureAlgorithms(), benchRates(), benchParams())
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			last := s.Points[len(s.Points)-1]
			switch s.Algorithm {
			case "BSOR-Dijkstra":
				b.ReportMetric(last.Throughput, "bsorSatTput")
			case "XY":
				b.ReportMetric(last.Throughput, "xySatTput")
			}
		}
	}
}

// BenchmarkFig61Transpose regenerates Figure 6-1 (transpose sweep).
func BenchmarkFig61Transpose(b *testing.B) { benchFigure(b, "transpose") }

// BenchmarkFig62BitComplement regenerates Figure 6-2.
func BenchmarkFig62BitComplement(b *testing.B) { benchFigure(b, "bit-complement") }

// BenchmarkFig63Shuffle regenerates Figure 6-3.
func BenchmarkFig63Shuffle(b *testing.B) { benchFigure(b, "shuffle") }

// BenchmarkFig64H264 regenerates Figure 6-4.
func BenchmarkFig64H264(b *testing.B) { benchFigure(b, "h264") }

// BenchmarkFig65PerfModeling regenerates Figure 6-5.
func BenchmarkFig65PerfModeling(b *testing.B) { benchFigure(b, "perf-modeling") }

// BenchmarkFig66Transmitter regenerates Figure 6-6.
func BenchmarkFig66Transmitter(b *testing.B) { benchFigure(b, "transmitter") }

// BenchmarkFig67VCSweep regenerates Figure 6-7: transpose under 1/2/4/8
// virtual channels, reporting the 2-VC and 4-VC saturation throughput
// whose ratio carries the thesis' ~40% head-of-line-blocking finding.
func BenchmarkFig67VCSweep(b *testing.B) {
	m := topology.NewMesh(8, 8)
	for i := 0; i < b.N; i++ {
		out, err := experiments.VCSweep(m, "transpose", []int{1, 2, 4, 8}, benchRates(), benchParams())
		if err != nil {
			b.Fatal(err)
		}
		for _, vcs := range []int{2, 4} {
			for _, s := range out[vcs] {
				if s.Algorithm == "BSOR-Dijkstra" {
					last := s.Points[len(s.Points)-1]
					if vcs == 2 {
						b.ReportMetric(last.Throughput, "tput2VC")
					} else {
						b.ReportMetric(last.Throughput, "tput4VC")
					}
				}
			}
		}
	}
}

func benchVariation(b *testing.B, percent float64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := &experiments.Runner{MILP: benchMILP()}
		series, err := r.VariationSweep(experiments.MeshSpec(8, 8), "transpose",
			experiments.FigureAlgorithms(), percent, benchRates(), benchParams())
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			if s.Algorithm == "BSOR-Dijkstra" {
				last := s.Points[len(s.Points)-1]
				b.ReportMetric(last.Throughput, "bsorSatTput")
			}
		}
	}
}

// BenchmarkFig68Variation10 regenerates Figure 6-8 (10% variation).
func BenchmarkFig68Variation10(b *testing.B) { benchVariation(b, 0.10) }

// BenchmarkFig69Variation25 regenerates Figure 6-9 (25% variation).
func BenchmarkFig69Variation25(b *testing.B) { benchVariation(b, 0.25) }

// BenchmarkFig610Variation50 regenerates Figure 6-10 (50% variation).
func BenchmarkFig610Variation50(b *testing.B) { benchVariation(b, 0.50) }

// BenchmarkFig54InjectionTrace regenerates Figure 5-4: the Markov-
// modulated injection-rate trace.
func BenchmarkFig54InjectionTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		trace := experiments.InjectionTrace(25, 0.25, 120000, 52)
		if len(trace) != 120000 {
			b.Fatal("short trace")
		}
	}
}

// meshTransposeXY builds the transpose-over-XY configuration the sim
// benchmarks sweep — the workload shape that dominates every figure.
func meshTransposeXY(b *testing.B, w, h int) (topology.Topology, *route.Set) {
	b.Helper()
	m := topology.NewMesh(w, h)
	flows, err := traffic.Transpose(m, 10)
	if err != nil {
		b.Fatal(err)
	}
	set, err := route.XY{}.Routes(m, flows)
	if err != nil {
		b.Fatal(err)
	}
	return m, set
}

// closRandPermSP builds a folded-Clos fabric under a seeded random
// permutation routed by deterministic shortest path (the graph-generic
// baseline) — the non-grid benchmark topology.
func closRandPermSP(b *testing.B, spines, leaves int) (topology.Topology, *route.Set) {
	b.Helper()
	g := topology.NewFoldedClos(spines, leaves)
	flows, err := traffic.RandomPermutation(g, 10, 1)
	if err != nil {
		b.Fatal(err)
	}
	set, err := route.ShortestPath{VCs: 2}.Routes(g, flows)
	if err != nil {
		b.Fatal(err)
	}
	return g, set
}

// BenchmarkSimCycles measures the raw speed of the cycle-accurate
// simulator core on offered-rate curves and reports simulated cycles per
// second and flit hops per second as custom metrics. scripts/bench_sim.sh
// runs it and records the numbers in BENCH_sim.json next to the captured
// seed-core baseline; CI runs it with -benchtime=1x so the metrics
// cannot silently break.
//
// The 16x16 case is the acceptance benchmark of the data-oriented core
// rewrite: five offered-rate points (deep sub-saturation through
// saturation) at 2k+10k cycles each, XY routes. The seed core sustained
// ~13.8k cycles/sec on this curve in the reference container; the
// active-set core is required to stay >= 3x above that.
//
// The -wN variants drive the same curves through the sharded parallel
// cycle loop (sim.Config.Workers, DESIGN.md §15) and produce identical
// results; on a single-core runner they measure barrier overhead rather
// than speedup. The 64x64 and clos rows exercise table construction and
// shard counts (32 and 18) far beyond the thesis figures.
func BenchmarkSimCycles(b *testing.B) {
	// The -metrics variants attach a live collector: the instrumented and
	// plain runs must stay within the documented <2% overhead budget
	// (DESIGN.md §14) because the simulator flushes counters only at its
	// existing 1024-cycle poll, never per cycle — including the per-shard
	// active-set gauges of a parallel run.
	for _, tc := range []struct {
		name    string
		build   func(*testing.B) (topology.Topology, *route.Set)
		workers int
		metrics bool
	}{
		{"mesh8x8", func(b *testing.B) (topology.Topology, *route.Set) { return meshTransposeXY(b, 8, 8) }, 0, false},
		{"mesh8x8-metrics", func(b *testing.B) (topology.Topology, *route.Set) { return meshTransposeXY(b, 8, 8) }, 0, true},
		{"mesh16x16", func(b *testing.B) (topology.Topology, *route.Set) { return meshTransposeXY(b, 16, 16) }, 0, false},
		{"mesh16x16-metrics", func(b *testing.B) (topology.Topology, *route.Set) { return meshTransposeXY(b, 16, 16) }, 0, true},
		{"mesh16x16-w4", func(b *testing.B) (topology.Topology, *route.Set) { return meshTransposeXY(b, 16, 16) }, 4, false},
		{"mesh16x16-w4-metrics", func(b *testing.B) (topology.Topology, *route.Set) { return meshTransposeXY(b, 16, 16) }, 4, true},
		{"mesh64x64", func(b *testing.B) (topology.Topology, *route.Set) { return meshTransposeXY(b, 64, 64) }, 0, false},
		{"mesh64x64-w8", func(b *testing.B) (topology.Topology, *route.Set) { return meshTransposeXY(b, 64, 64) }, 8, false},
		{"clos32x256-w8", func(b *testing.B) (topology.Topology, *route.Set) { return closRandPermSP(b, 32, 256) }, 8, false},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var coll *metrics.Collector
			if tc.metrics {
				coll = metrics.New()
			}
			m, set := tc.build(b)
			rates := []float64{2, 10, 20, 40, 60}
			var cycles, hops int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, rate := range rates {
					s, err := sim.New(sim.Config{
						Mesh: m, Routes: set, VCs: 2, OfferedRate: rate,
						WarmupCycles: 2000, MeasureCycles: 10000, Seed: 1,
						Workers: tc.workers,
						Metrics: coll,
					})
					if err != nil {
						b.Fatal(err)
					}
					res, err := s.Run()
					if err != nil {
						b.Fatal(err)
					}
					if res.Deadlocked {
						b.Fatal("benchmark config deadlocked")
					}
					cycles += res.Cycles
					hops += res.FlitHops
				}
			}
			sec := b.Elapsed().Seconds()
			if sec > 0 {
				b.ReportMetric(float64(cycles)/sec, "cycles/sec")
				b.ReportMetric(float64(hops)/sec, "flithops/sec")
			}
		})
	}
}

// BenchmarkSweepEngineSpeedup times the full six-workload x five-breaker
// BSOR_Dijkstra CDG exploration (the Table 6.2 sweep) sequentially
// (Workers=1) and in parallel (Workers=NumCPU) on cold caches, and
// reports the wall-clock ratio as the "speedup" metric. On a 4-core
// runner the parallel sweep is expected to be >= 3x faster; on a single
// core the ratio is ~1 by construction.
func BenchmarkSweepEngineSpeedup(b *testing.B) {
	jobs := experiments.TableJobs("bench-speedup", experiments.MeshSpec(8, 8),
		"BSOR-Dijkstra", experiments.TableBreakerNames(), 2)
	run := func(workers int) (time.Duration, []experiments.Result) {
		r := &experiments.Runner{Workers: workers}
		start := time.Now()
		results := r.Run(jobs)
		return time.Since(start), results
	}
	for i := 0; i < b.N; i++ {
		seqTime, seqResults := run(1)
		parTime, parResults := run(runtime.NumCPU())
		for j := range seqResults {
			if seqResults[j].MCL != parResults[j].MCL {
				b.Fatalf("parallel execution changed job %d: MCL %g vs %g",
					j, parResults[j].MCL, seqResults[j].MCL)
			}
		}
		b.ReportMetric(seqTime.Seconds()/parTime.Seconds(), "speedup")
		b.ReportMetric(float64(runtime.NumCPU()), "cores")
	}
}
