package repro

// Ablation benchmarks for the design choices the thesis motivates but
// does not always quantify:
//
//   - static versus dynamic virtual-channel allocation (§4.2.2, the Shim
//     et al. comparison the thesis cites),
//   - breadth of the acyclic-CDG exploration (1 vs 5 vs 15 CDGs, §3.2
//     step 4),
//   - the M constant of the Dijkstra weight function (§3.6's latency
//     versus load-balance knob),
//   - flow routing order for the sequential selector,
//   - selector quality: MILP versus Dijkstra MCL on equal CDGs.
//
// Each bench reports its quality metric via b.ReportMetric so ablations
// are visible in benchmark output.

import (
	"testing"

	"repro/internal/cdg"
	"repro/internal/core"
	"repro/internal/flowgraph"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func transposeWorkload() (*topology.Mesh, []flowgraph.Flow) {
	m := topology.NewMesh(8, 8)
	flows, err := traffic.Transpose(m, traffic.DefaultSyntheticDemand)
	if err != nil {
		panic(err)
	}
	return m, flows
}

// BenchmarkAblationStaticVsDynamicVC simulates the same BSOR route set
// with static and dynamic VC allocation at saturation.
func BenchmarkAblationStaticVsDynamicVC(b *testing.B) {
	m, flows := transposeWorkload()
	set, _, err := core.Best(m, flows, core.Config{VCs: 4})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, dyn := range []bool{false, true} {
			s, err := sim.New(sim.Config{
				Mesh: m, Routes: set, VCs: 4, DynamicVC: dyn, OfferedRate: 40,
				WarmupCycles: 2000, MeasureCycles: 10000, Seed: 5,
			})
			if err != nil {
				b.Fatal(err)
			}
			res, err := s.Run()
			if err != nil {
				b.Fatal(err)
			}
			if res.Deadlocked {
				b.Fatalf("deadlock (dynamic=%v)", dyn)
			}
			if dyn {
				b.ReportMetric(res.Throughput, "dynTput")
			} else {
				b.ReportMetric(res.Throughput, "staticTput")
			}
		}
	}
}

// BenchmarkAblationCDGBreadth measures how best-of-N CDG exploration
// affects the transpose MCL: one turn rule, the five table CDGs, or the
// full fifteen.
func BenchmarkAblationCDGBreadth(b *testing.B) {
	m, flows := transposeWorkload()
	sets := map[string][]cdg.Breaker{
		"one":     {cdg.TurnBreaker{Rule: cdg.XYOrder}},
		"five":    nil, // filled below
		"fifteen": cdg.StandardBreakers(),
	}
	sets["five"] = []cdg.Breaker{
		cdg.TurnBreaker{Rule: cdg.LastRule(topology.North)},
		cdg.TurnBreaker{Rule: cdg.FirstRule(topology.West)},
		cdg.TurnBreaker{Rule: cdg.NegativeFirstRule(topology.West, topology.North)},
		cdg.AdHocBreaker{Seed: 1},
		cdg.AdHocBreaker{Seed: 2},
	}
	for i := 0; i < b.N; i++ {
		for name, breakers := range sets {
			_, best, err := core.Best(m, flows, core.Config{VCs: 2, Breakers: breakers})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(best.MCL, name+"MCL")
		}
	}
}

// BenchmarkAblationWeightM sweeps the M constant of the §3.6 weight
// function w(e) = 1/(a(e)-d+M): small M balances load, large M minimizes
// hops.
func BenchmarkAblationWeightM(b *testing.B) {
	m, flows := transposeWorkload()
	dag := cdg.TurnBreaker{Rule: cdg.NegativeFirstRule(topology.West, topology.North)}.
		Break(cdg.NewFull(m, 2))
	g := flowgraph.New(dag, flows, 100)
	for i := 0; i < b.N; i++ {
		for _, mc := range []struct {
			name string
			m    float64
		}{{"Msmall", 50}, {"Mcap", 100}, {"Mbig", 1600}} {
			set, err := route.DijkstraSelector{M: mc.m}.Select(g)
			if err != nil {
				b.Fatal(err)
			}
			mcl, _ := set.MCL()
			b.ReportMetric(mcl, mc.name+"MCL")
			b.ReportMetric(set.AvgHops(), mc.name+"Hops")
		}
	}
}

// BenchmarkAblationFlowOrder compares demand-descending versus flow-set
// order for the sequential Dijkstra selector on the H.264 workload (whose
// demands are highly skewed).
func BenchmarkAblationFlowOrder(b *testing.B) {
	m := topology.NewMesh(8, 8)
	app, err := traffic.H264Decoder(m)
	if err != nil {
		b.Fatal(err)
	}
	flows := app.Flows
	dag := cdg.TurnBreaker{Rule: cdg.NegativeFirstRule(topology.West, topology.North)}.
		Break(cdg.NewFull(m, 2))
	g := flowgraph.New(dag, flows, 4*120.4)
	for i := 0; i < b.N; i++ {
		for _, oc := range []struct {
			name  string
			order route.FlowOrder
		}{{"demandDesc", route.ByDemandDesc}, {"asGiven", route.AsGiven}} {
			set, err := route.DijkstraSelector{Order: oc.order}.Select(g)
			if err != nil {
				b.Fatal(err)
			}
			mcl, _ := set.MCL()
			b.ReportMetric(mcl, oc.name+"MCL")
		}
	}
}

// BenchmarkAblationSelectorQuality compares MILP and Dijkstra MCL under
// one fixed CDG, isolating selector quality from CDG choice.
func BenchmarkAblationSelectorQuality(b *testing.B) {
	m, flows := transposeWorkload()
	dag := cdg.TurnBreaker{Rule: cdg.NegativeFirstRule(topology.West, topology.North)}.
		Break(cdg.NewFull(m, 2))
	g := flowgraph.New(dag, flows, 100)
	for i := 0; i < b.N; i++ {
		dset, err := route.DijkstraSelector{}.Select(g)
		if err != nil {
			b.Fatal(err)
		}
		dm, _ := dset.MCL()
		b.ReportMetric(dm, "dijkstraMCL")

		mset, err := route.MILPSelector{HopSlack: 2, MaxPathsPerFlow: 8,
			Refinements: 2, MaxNodes: 40, Gap: 0.01}.Select(g)
		if err != nil {
			b.Fatal(err)
		}
		mm, _ := mset.MCL()
		b.ReportMetric(mm, "milpMCL")
	}
}

// BenchmarkAblationPipelineDepth compares the published 1-cycle-per-hop
// router against a 4-stage (RC/VA/SA/ST) pipeline at moderate load.
func BenchmarkAblationPipelineDepth(b *testing.B) {
	m, flows := transposeWorkload()
	set, _, err := core.Best(m, flows, core.Config{VCs: 2})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, stages := range []int{1, 4} {
			s, err := sim.New(sim.Config{
				Mesh: m, Routes: set, VCs: 2, PipelineStages: stages, OfferedRate: 10,
				WarmupCycles: 2000, MeasureCycles: 10000, Seed: 6,
			})
			if err != nil {
				b.Fatal(err)
			}
			res, err := s.Run()
			if err != nil {
				b.Fatal(err)
			}
			if stages == 1 {
				b.ReportMetric(res.AvgLatency, "lat1stage")
			} else {
				b.ReportMetric(res.AvgLatency, "lat4stage")
			}
		}
	}
}

// BenchmarkSimulatorCycleRate measures raw simulator speed in
// cycles/second at a saturating load on the full 8x8 transpose
// configuration.
func BenchmarkSimulatorCycleRate(b *testing.B) {
	m, flows := transposeWorkload()
	set, err := route.XY{}.Routes(m, flows)
	if err != nil {
		b.Fatal(err)
	}
	const cycles = 20000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := sim.New(sim.Config{
			Mesh: m, Routes: set, VCs: 2, DynamicVC: true, OfferedRate: 30,
			WarmupCycles: 0, MeasureCycles: cycles, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkDijkstraSelection measures route synthesis speed for the
// 56-flow transpose on one CDG (the thesis: "thousands of nodes within
// seconds").
func BenchmarkDijkstraSelection(b *testing.B) {
	m, flows := transposeWorkload()
	dag := cdg.TurnBreaker{Rule: cdg.NegativeFirstRule(topology.West, topology.North)}.
		Break(cdg.NewFull(m, 2))
	g := flowgraph.New(dag, flows, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (route.DijkstraSelector{}).Select(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCDGConstruction measures full-CDG build plus turn-model
// breaking on the 8x8, 2-VC configuration.
func BenchmarkCDGConstruction(b *testing.B) {
	m := topology.NewMesh(8, 8)
	for i := 0; i < b.N; i++ {
		full := cdg.NewFull(m, 2)
		a := cdg.TurnBreaker{Rule: cdg.WestFirst}.Break(full)
		if !a.IsAcyclic() {
			b.Fatal("cyclic")
		}
	}
}
